/root/repo/target/debug/deps/engine_vs_oracle-9292122cd57f9bcf.d: tests/engine_vs_oracle.rs

/root/repo/target/debug/deps/engine_vs_oracle-9292122cd57f9bcf: tests/engine_vs_oracle.rs

tests/engine_vs_oracle.rs:
