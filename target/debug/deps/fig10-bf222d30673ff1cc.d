/root/repo/target/debug/deps/fig10-bf222d30673ff1cc.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-bf222d30673ff1cc: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
