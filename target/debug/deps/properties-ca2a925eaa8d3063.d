/root/repo/target/debug/deps/properties-ca2a925eaa8d3063.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ca2a925eaa8d3063.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
