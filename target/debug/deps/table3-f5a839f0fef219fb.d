/root/repo/target/debug/deps/table3-f5a839f0fef219fb.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-f5a839f0fef219fb: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
