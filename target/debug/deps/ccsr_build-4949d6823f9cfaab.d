/root/repo/target/debug/deps/ccsr_build-4949d6823f9cfaab.d: crates/bench/benches/ccsr_build.rs Cargo.toml

/root/repo/target/debug/deps/libccsr_build-4949d6823f9cfaab.rmeta: crates/bench/benches/ccsr_build.rs Cargo.toml

crates/bench/benches/ccsr_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
