/root/repo/target/debug/deps/criterion-88563bd577b1c4c4.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-88563bd577b1c4c4: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
