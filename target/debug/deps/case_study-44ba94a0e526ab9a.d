/root/repo/target/debug/deps/case_study-44ba94a0e526ab9a.d: crates/bench/src/bin/case_study.rs

/root/repo/target/debug/deps/case_study-44ba94a0e526ab9a: crates/bench/src/bin/case_study.rs

crates/bench/src/bin/case_study.rs:
