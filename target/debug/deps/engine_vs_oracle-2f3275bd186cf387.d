/root/repo/target/debug/deps/engine_vs_oracle-2f3275bd186cf387.d: tests/engine_vs_oracle.rs

/root/repo/target/debug/deps/engine_vs_oracle-2f3275bd186cf387: tests/engine_vs_oracle.rs

tests/engine_vs_oracle.rs:
