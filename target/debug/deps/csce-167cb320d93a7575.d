/root/repo/target/debug/deps/csce-167cb320d93a7575.d: src/lib.rs

/root/repo/target/debug/deps/csce-167cb320d93a7575: src/lib.rs

src/lib.rs:
