/root/repo/target/debug/deps/fig14-15468ac036687af6.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-15468ac036687af6.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
