/root/repo/target/debug/deps/table3-46efd86f3f8fae7b.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-46efd86f3f8fae7b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
