/root/repo/target/debug/deps/csce_datasets-14a7b1b8d06856d6.d: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libcsce_datasets-14a7b1b8d06856d6.rmeta: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/clustering.rs:
crates/datasets/src/email.rs:
crates/datasets/src/motifs.rs:
crates/datasets/src/patterns.rs:
crates/datasets/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
