/root/repo/target/debug/deps/properties-ece6687f5a2ebc6a.d: tests/properties.rs

/root/repo/target/debug/deps/properties-ece6687f5a2ebc6a: tests/properties.rs

tests/properties.rs:
