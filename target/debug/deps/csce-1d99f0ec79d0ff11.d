/root/repo/target/debug/deps/csce-1d99f0ec79d0ff11.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcsce-1d99f0ec79d0ff11.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
