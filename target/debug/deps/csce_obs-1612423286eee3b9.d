/root/repo/target/debug/deps/csce_obs-1612423286eee3b9.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/csce_obs-1612423286eee3b9: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
