/root/repo/target/debug/deps/csce_datasets-1c2dc9ee1cc1f094.d: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

/root/repo/target/debug/deps/csce_datasets-1c2dc9ee1cc1f094: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

crates/datasets/src/lib.rs:
crates/datasets/src/clustering.rs:
crates/datasets/src/email.rs:
crates/datasets/src/motifs.rs:
crates/datasets/src/patterns.rs:
crates/datasets/src/presets.rs:
