/root/repo/target/debug/deps/csce_datasets-7ce126e1ce31d1a3.d: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

/root/repo/target/debug/deps/libcsce_datasets-7ce126e1ce31d1a3.rlib: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

/root/repo/target/debug/deps/libcsce_datasets-7ce126e1ce31d1a3.rmeta: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

crates/datasets/src/lib.rs:
crates/datasets/src/clustering.rs:
crates/datasets/src/email.rs:
crates/datasets/src/motifs.rs:
crates/datasets/src/patterns.rs:
crates/datasets/src/presets.rs:
