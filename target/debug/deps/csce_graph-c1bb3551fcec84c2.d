/root/repo/target/debug/deps/csce_graph-c1bb3551fcec84c2.d: crates/graph/src/lib.rs crates/graph/src/automorphism.rs crates/graph/src/export.rs crates/graph/src/generate.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/oracle.rs crates/graph/src/pattern.rs crates/graph/src/query.rs crates/graph/src/sample.rs crates/graph/src/stats.rs crates/graph/src/util/mod.rs crates/graph/src/util/fxhash.rs

/root/repo/target/debug/deps/libcsce_graph-c1bb3551fcec84c2.rlib: crates/graph/src/lib.rs crates/graph/src/automorphism.rs crates/graph/src/export.rs crates/graph/src/generate.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/oracle.rs crates/graph/src/pattern.rs crates/graph/src/query.rs crates/graph/src/sample.rs crates/graph/src/stats.rs crates/graph/src/util/mod.rs crates/graph/src/util/fxhash.rs

/root/repo/target/debug/deps/libcsce_graph-c1bb3551fcec84c2.rmeta: crates/graph/src/lib.rs crates/graph/src/automorphism.rs crates/graph/src/export.rs crates/graph/src/generate.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/oracle.rs crates/graph/src/pattern.rs crates/graph/src/query.rs crates/graph/src/sample.rs crates/graph/src/stats.rs crates/graph/src/util/mod.rs crates/graph/src/util/fxhash.rs

crates/graph/src/lib.rs:
crates/graph/src/automorphism.rs:
crates/graph/src/export.rs:
crates/graph/src/generate.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/oracle.rs:
crates/graph/src/pattern.rs:
crates/graph/src/query.rs:
crates/graph/src/sample.rs:
crates/graph/src/stats.rs:
crates/graph/src/util/mod.rs:
crates/graph/src/util/fxhash.rs:
