/root/repo/target/debug/deps/csce_core-f6225cf0f3364f1c.d: crates/core/src/lib.rs crates/core/src/bitset.rs crates/core/src/catalog.rs crates/core/src/exec/mod.rs crates/core/src/exec/stats.rs crates/core/src/plan/mod.rs crates/core/src/plan/dag.rs crates/core/src/plan/descendant.rs crates/core/src/plan/explain.rs crates/core/src/plan/gcf.rs crates/core/src/plan/ldsf.rs crates/core/src/plan/nec.rs

/root/repo/target/debug/deps/csce_core-f6225cf0f3364f1c: crates/core/src/lib.rs crates/core/src/bitset.rs crates/core/src/catalog.rs crates/core/src/exec/mod.rs crates/core/src/exec/stats.rs crates/core/src/plan/mod.rs crates/core/src/plan/dag.rs crates/core/src/plan/descendant.rs crates/core/src/plan/explain.rs crates/core/src/plan/gcf.rs crates/core/src/plan/ldsf.rs crates/core/src/plan/nec.rs

crates/core/src/lib.rs:
crates/core/src/bitset.rs:
crates/core/src/catalog.rs:
crates/core/src/exec/mod.rs:
crates/core/src/exec/stats.rs:
crates/core/src/plan/mod.rs:
crates/core/src/plan/dag.rs:
crates/core/src/plan/descendant.rs:
crates/core/src/plan/explain.rs:
crates/core/src/plan/gcf.rs:
crates/core/src/plan/ldsf.rs:
crates/core/src/plan/nec.rs:
