/root/repo/target/debug/deps/csce_baselines-04c7bbb13093185f.d: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs

/root/repo/target/debug/deps/csce_baselines-04c7bbb13093185f: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cfl.rs:
crates/baselines/src/common.rs:
crates/baselines/src/fsp.rs:
crates/baselines/src/ri.rs:
crates/baselines/src/symmetry.rs:
crates/baselines/src/vf.rs:
crates/baselines/src/wcoj.rs:
