/root/repo/target/debug/deps/csce_baselines-45fe42dfad57aeaa.d: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs

/root/repo/target/debug/deps/libcsce_baselines-45fe42dfad57aeaa.rlib: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs

/root/repo/target/debug/deps/libcsce_baselines-45fe42dfad57aeaa.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cfl.rs:
crates/baselines/src/common.rs:
crates/baselines/src/fsp.rs:
crates/baselines/src/ri.rs:
crates/baselines/src/symmetry.rs:
crates/baselines/src/vf.rs:
crates/baselines/src/wcoj.rs:
