/root/repo/target/debug/deps/csce_graph-ec3a60af306629f5.d: crates/graph/src/lib.rs crates/graph/src/automorphism.rs crates/graph/src/export.rs crates/graph/src/generate.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/oracle.rs crates/graph/src/pattern.rs crates/graph/src/query.rs crates/graph/src/sample.rs crates/graph/src/stats.rs crates/graph/src/util/mod.rs crates/graph/src/util/fxhash.rs Cargo.toml

/root/repo/target/debug/deps/libcsce_graph-ec3a60af306629f5.rmeta: crates/graph/src/lib.rs crates/graph/src/automorphism.rs crates/graph/src/export.rs crates/graph/src/generate.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/oracle.rs crates/graph/src/pattern.rs crates/graph/src/query.rs crates/graph/src/sample.rs crates/graph/src/stats.rs crates/graph/src/util/mod.rs crates/graph/src/util/fxhash.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/automorphism.rs:
crates/graph/src/export.rs:
crates/graph/src/generate.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/oracle.rs:
crates/graph/src/pattern.rs:
crates/graph/src/query.rs:
crates/graph/src/sample.rs:
crates/graph/src/stats.rs:
crates/graph/src/util/mod.rs:
crates/graph/src/util/fxhash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
