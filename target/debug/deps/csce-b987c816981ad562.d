/root/repo/target/debug/deps/csce-b987c816981ad562.d: src/lib.rs

/root/repo/target/debug/deps/libcsce-b987c816981ad562.rlib: src/lib.rs

/root/repo/target/debug/deps/libcsce-b987c816981ad562.rmeta: src/lib.rs

src/lib.rs:
