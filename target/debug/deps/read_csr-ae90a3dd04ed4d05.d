/root/repo/target/debug/deps/read_csr-ae90a3dd04ed4d05.d: crates/bench/benches/read_csr.rs Cargo.toml

/root/repo/target/debug/deps/libread_csr-ae90a3dd04ed4d05.rmeta: crates/bench/benches/read_csr.rs Cargo.toml

crates/bench/benches/read_csr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
