/root/repo/target/debug/deps/csce-468b3e0c41ac1a30.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcsce-468b3e0c41ac1a30.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
