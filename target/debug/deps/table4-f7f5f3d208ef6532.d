/root/repo/target/debug/deps/table4-f7f5f3d208ef6532.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-f7f5f3d208ef6532: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
