/root/repo/target/debug/deps/csce_bench-bfd190102d0a23f9.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libcsce_bench-bfd190102d0a23f9.rlib: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libcsce_bench-bfd190102d0a23f9.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
