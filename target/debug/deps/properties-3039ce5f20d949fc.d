/root/repo/target/debug/deps/properties-3039ce5f20d949fc.d: tests/properties.rs

/root/repo/target/debug/deps/properties-3039ce5f20d949fc: tests/properties.rs

tests/properties.rs:
