/root/repo/target/debug/deps/fig13-2be00fb64dc9fb92.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-2be00fb64dc9fb92: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
