/root/repo/target/debug/deps/csce_bench-39fa4a0cdc9850b6.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libcsce_bench-39fa4a0cdc9850b6.rlib: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libcsce_bench-39fa4a0cdc9850b6.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
