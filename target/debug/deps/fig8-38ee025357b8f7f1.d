/root/repo/target/debug/deps/fig8-38ee025357b8f7f1.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-38ee025357b8f7f1: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
