/root/repo/target/debug/deps/csce_ccsr-af6bc8b828158282.d: crates/ccsr/src/lib.rs crates/ccsr/src/build.rs crates/ccsr/src/cluster.rs crates/ccsr/src/compress.rs crates/ccsr/src/csr.rs crates/ccsr/src/key.rs crates/ccsr/src/persist.rs crates/ccsr/src/read.rs crates/ccsr/src/stats.rs

/root/repo/target/debug/deps/csce_ccsr-af6bc8b828158282: crates/ccsr/src/lib.rs crates/ccsr/src/build.rs crates/ccsr/src/cluster.rs crates/ccsr/src/compress.rs crates/ccsr/src/csr.rs crates/ccsr/src/key.rs crates/ccsr/src/persist.rs crates/ccsr/src/read.rs crates/ccsr/src/stats.rs

crates/ccsr/src/lib.rs:
crates/ccsr/src/build.rs:
crates/ccsr/src/cluster.rs:
crates/ccsr/src/compress.rs:
crates/ccsr/src/csr.rs:
crates/ccsr/src/key.rs:
crates/ccsr/src/persist.rs:
crates/ccsr/src/read.rs:
crates/ccsr/src/stats.rs:
