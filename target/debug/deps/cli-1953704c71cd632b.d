/root/repo/target/debug/deps/cli-1953704c71cd632b.d: tests/cli.rs

/root/repo/target/debug/deps/cli-1953704c71cd632b: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_csce=/root/repo/target/debug/csce
