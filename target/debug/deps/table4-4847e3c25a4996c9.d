/root/repo/target/debug/deps/table4-4847e3c25a4996c9.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-4847e3c25a4996c9: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
