/root/repo/target/debug/deps/fig6-b8408a3f2a52beb3.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-b8408a3f2a52beb3: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
