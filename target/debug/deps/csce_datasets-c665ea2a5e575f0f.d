/root/repo/target/debug/deps/csce_datasets-c665ea2a5e575f0f.d: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

/root/repo/target/debug/deps/libcsce_datasets-c665ea2a5e575f0f.rlib: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

/root/repo/target/debug/deps/libcsce_datasets-c665ea2a5e575f0f.rmeta: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

crates/datasets/src/lib.rs:
crates/datasets/src/clustering.rs:
crates/datasets/src/email.rs:
crates/datasets/src/motifs.rs:
crates/datasets/src/patterns.rs:
crates/datasets/src/presets.rs:
