/root/repo/target/debug/deps/stats_invariants-e5ca24708544635f.d: tests/stats_invariants.rs

/root/repo/target/debug/deps/stats_invariants-e5ca24708544635f: tests/stats_invariants.rs

tests/stats_invariants.rs:
