/root/repo/target/debug/deps/closed_form-8e0f738bfe5a5e7d.d: tests/closed_form.rs Cargo.toml

/root/repo/target/debug/deps/libclosed_form-8e0f738bfe5a5e7d.rmeta: tests/closed_form.rs Cargo.toml

tests/closed_form.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
