/root/repo/target/debug/deps/planning-1e9832eae7bd8e44.d: crates/bench/benches/planning.rs Cargo.toml

/root/repo/target/debug/deps/libplanning-1e9832eae7bd8e44.rmeta: crates/bench/benches/planning.rs Cargo.toml

crates/bench/benches/planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
