/root/repo/target/debug/deps/stats_invariants-956611428079da49.d: tests/stats_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libstats_invariants-956611428079da49.rmeta: tests/stats_invariants.rs Cargo.toml

tests/stats_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
