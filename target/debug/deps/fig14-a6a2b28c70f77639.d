/root/repo/target/debug/deps/fig14-a6a2b28c70f77639.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-a6a2b28c70f77639.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
