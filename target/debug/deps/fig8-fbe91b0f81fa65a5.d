/root/repo/target/debug/deps/fig8-fbe91b0f81fa65a5.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-fbe91b0f81fa65a5: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
