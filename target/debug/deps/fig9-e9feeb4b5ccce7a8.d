/root/repo/target/debug/deps/fig9-e9feeb4b5ccce7a8.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-e9feeb4b5ccce7a8: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
