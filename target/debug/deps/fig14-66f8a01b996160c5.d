/root/repo/target/debug/deps/fig14-66f8a01b996160c5.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-66f8a01b996160c5: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
