/root/repo/target/debug/deps/criterion-b84cfba938b55150.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b84cfba938b55150.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b84cfba938b55150.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
