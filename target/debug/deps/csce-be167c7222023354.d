/root/repo/target/debug/deps/csce-be167c7222023354.d: src/bin/csce.rs Cargo.toml

/root/repo/target/debug/deps/libcsce-be167c7222023354.rmeta: src/bin/csce.rs Cargo.toml

src/bin/csce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
