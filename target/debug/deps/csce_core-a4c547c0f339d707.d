/root/repo/target/debug/deps/csce_core-a4c547c0f339d707.d: crates/core/src/lib.rs crates/core/src/bitset.rs crates/core/src/catalog.rs crates/core/src/exec/mod.rs crates/core/src/exec/stats.rs crates/core/src/plan/mod.rs crates/core/src/plan/dag.rs crates/core/src/plan/descendant.rs crates/core/src/plan/explain.rs crates/core/src/plan/gcf.rs crates/core/src/plan/ldsf.rs crates/core/src/plan/nec.rs Cargo.toml

/root/repo/target/debug/deps/libcsce_core-a4c547c0f339d707.rmeta: crates/core/src/lib.rs crates/core/src/bitset.rs crates/core/src/catalog.rs crates/core/src/exec/mod.rs crates/core/src/exec/stats.rs crates/core/src/plan/mod.rs crates/core/src/plan/dag.rs crates/core/src/plan/descendant.rs crates/core/src/plan/explain.rs crates/core/src/plan/gcf.rs crates/core/src/plan/ldsf.rs crates/core/src/plan/nec.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bitset.rs:
crates/core/src/catalog.rs:
crates/core/src/exec/mod.rs:
crates/core/src/exec/stats.rs:
crates/core/src/plan/mod.rs:
crates/core/src/plan/dag.rs:
crates/core/src/plan/descendant.rs:
crates/core/src/plan/explain.rs:
crates/core/src/plan/gcf.rs:
crates/core/src/plan/ldsf.rs:
crates/core/src/plan/nec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
