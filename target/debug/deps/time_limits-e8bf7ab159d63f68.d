/root/repo/target/debug/deps/time_limits-e8bf7ab159d63f68.d: tests/time_limits.rs Cargo.toml

/root/repo/target/debug/deps/libtime_limits-e8bf7ab159d63f68.rmeta: tests/time_limits.rs Cargo.toml

tests/time_limits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
