/root/repo/target/debug/deps/closed_form-f8ca523bded058e9.d: tests/closed_form.rs

/root/repo/target/debug/deps/closed_form-f8ca523bded058e9: tests/closed_form.rs

tests/closed_form.rs:
