/root/repo/target/debug/deps/sce_and_nec_effects-16f1e41ff7a51dd8.d: tests/sce_and_nec_effects.rs

/root/repo/target/debug/deps/sce_and_nec_effects-16f1e41ff7a51dd8: tests/sce_and_nec_effects.rs

tests/sce_and_nec_effects.rs:
