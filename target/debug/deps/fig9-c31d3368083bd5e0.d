/root/repo/target/debug/deps/fig9-c31d3368083bd5e0.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-c31d3368083bd5e0: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
