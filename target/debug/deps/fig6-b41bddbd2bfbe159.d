/root/repo/target/debug/deps/fig6-b41bddbd2bfbe159.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-b41bddbd2bfbe159: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
