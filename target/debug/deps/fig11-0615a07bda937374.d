/root/repo/target/debug/deps/fig11-0615a07bda937374.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-0615a07bda937374: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
