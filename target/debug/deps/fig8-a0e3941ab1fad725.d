/root/repo/target/debug/deps/fig8-a0e3941ab1fad725.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-a0e3941ab1fad725.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
