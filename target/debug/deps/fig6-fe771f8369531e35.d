/root/repo/target/debug/deps/fig6-fe771f8369531e35.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-fe771f8369531e35: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
