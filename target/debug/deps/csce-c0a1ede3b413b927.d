/root/repo/target/debug/deps/csce-c0a1ede3b413b927.d: src/bin/csce.rs

/root/repo/target/debug/deps/csce-c0a1ede3b413b927: src/bin/csce.rs

src/bin/csce.rs:
