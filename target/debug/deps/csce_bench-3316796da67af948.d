/root/repo/target/debug/deps/csce_bench-3316796da67af948.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libcsce_bench-3316796da67af948.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
