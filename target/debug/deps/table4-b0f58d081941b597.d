/root/repo/target/debug/deps/table4-b0f58d081941b597.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-b0f58d081941b597: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
