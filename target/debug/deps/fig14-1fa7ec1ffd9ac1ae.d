/root/repo/target/debug/deps/fig14-1fa7ec1ffd9ac1ae.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-1fa7ec1ffd9ac1ae: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
