/root/repo/target/debug/deps/csce_datasets-d6cb815eb287803b.d: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

/root/repo/target/debug/deps/csce_datasets-d6cb815eb287803b: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

crates/datasets/src/lib.rs:
crates/datasets/src/clustering.rs:
crates/datasets/src/email.rs:
crates/datasets/src/motifs.rs:
crates/datasets/src/patterns.rs:
crates/datasets/src/presets.rs:
