/root/repo/target/debug/deps/datasets_end_to_end-1c6b9ac5f1f4a65b.d: tests/datasets_end_to_end.rs

/root/repo/target/debug/deps/datasets_end_to_end-1c6b9ac5f1f4a65b: tests/datasets_end_to_end.rs

tests/datasets_end_to_end.rs:
