/root/repo/target/debug/deps/fig12-3f3f0cb90bb3bb75.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-3f3f0cb90bb3bb75: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
