/root/repo/target/debug/deps/fig13-79828b4f039c0a63.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-79828b4f039c0a63: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
