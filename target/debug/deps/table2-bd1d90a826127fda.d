/root/repo/target/debug/deps/table2-bd1d90a826127fda.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-bd1d90a826127fda: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
