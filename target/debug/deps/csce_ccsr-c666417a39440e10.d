/root/repo/target/debug/deps/csce_ccsr-c666417a39440e10.d: crates/ccsr/src/lib.rs crates/ccsr/src/build.rs crates/ccsr/src/cluster.rs crates/ccsr/src/compress.rs crates/ccsr/src/csr.rs crates/ccsr/src/key.rs crates/ccsr/src/persist.rs crates/ccsr/src/read.rs crates/ccsr/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcsce_ccsr-c666417a39440e10.rmeta: crates/ccsr/src/lib.rs crates/ccsr/src/build.rs crates/ccsr/src/cluster.rs crates/ccsr/src/compress.rs crates/ccsr/src/csr.rs crates/ccsr/src/key.rs crates/ccsr/src/persist.rs crates/ccsr/src/read.rs crates/ccsr/src/stats.rs Cargo.toml

crates/ccsr/src/lib.rs:
crates/ccsr/src/build.rs:
crates/ccsr/src/cluster.rs:
crates/ccsr/src/compress.rs:
crates/ccsr/src/csr.rs:
crates/ccsr/src/key.rs:
crates/ccsr/src/persist.rs:
crates/ccsr/src/read.rs:
crates/ccsr/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
