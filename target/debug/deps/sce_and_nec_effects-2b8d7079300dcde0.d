/root/repo/target/debug/deps/sce_and_nec_effects-2b8d7079300dcde0.d: tests/sce_and_nec_effects.rs Cargo.toml

/root/repo/target/debug/deps/libsce_and_nec_effects-2b8d7079300dcde0.rmeta: tests/sce_and_nec_effects.rs Cargo.toml

tests/sce_and_nec_effects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
