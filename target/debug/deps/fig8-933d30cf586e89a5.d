/root/repo/target/debug/deps/fig8-933d30cf586e89a5.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-933d30cf586e89a5: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
