/root/repo/target/debug/deps/csce_bench-8eef3f5ab0325ef3.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libcsce_bench-8eef3f5ab0325ef3.rlib: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libcsce_bench-8eef3f5ab0325ef3.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
