/root/repo/target/debug/deps/intersection-0988b4f3e971836a.d: crates/bench/benches/intersection.rs Cargo.toml

/root/repo/target/debug/deps/libintersection-0988b4f3e971836a.rmeta: crates/bench/benches/intersection.rs Cargo.toml

crates/bench/benches/intersection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
