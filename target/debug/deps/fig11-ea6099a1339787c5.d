/root/repo/target/debug/deps/fig11-ea6099a1339787c5.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-ea6099a1339787c5: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
