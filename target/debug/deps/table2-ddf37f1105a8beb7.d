/root/repo/target/debug/deps/table2-ddf37f1105a8beb7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ddf37f1105a8beb7: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
