/root/repo/target/debug/deps/table2-0136337d8f0e7830.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-0136337d8f0e7830: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
