//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the API subset the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`ProptestConfig`], and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Semantics: each test runs `cases` times against values drawn from a
//! deterministic per-test stream (seeded from the test name, overridable
//! with the `PROPTEST_SEED` env var). There is no shrinking — a failing
//! case panics with the case index and seed so it can be replayed.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving value production (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Per-test stream: hash of the test name mixed with the case index.
    pub fn deterministic(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s;
            }
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (upstream `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (upstream `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for collection strategies (upstream `SizeRange`).
    /// Taking `Into<SizeRange>` — not an integer strategy — matters for
    /// inference: it makes bare `0..4` literals resolve to `usize`, as
    /// they do with the real crate.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty length range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// A `Vec` whose length is drawn from `lens` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, lens: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, lens: lens.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        lens: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.lens.hi - self.lens.lo) as u64 + 1;
            let len = self.lens.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration: how many cases each property test executes.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Always produces the same value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declare property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` times over freshly drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name), case);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                $body
            }
        }
    )*};
}

/// One-stop imports, mirroring upstream.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t", 0);
        for _ in 0..100 {
            let (a, b) = (1u32..5, 0usize..=2).generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!(b <= 2);
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = collection::vec(0u32..10, 2..4usize);
        let mut rng = TestRng::deterministic("v", 3);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v.len() == 2 || v.len() == 3);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0u32..3).prop_map(|x| x * 10);
        let mut rng = TestRng::deterministic("m", 1);
        for _ in 0..20 {
            assert!(matches!(strat.generate(&mut rng), 0 | 10 | 20));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: addition stays commutative.
        #[test]
        fn macro_generated_test(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }
    }
}
