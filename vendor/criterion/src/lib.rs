//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate supplies
//! the API subset the workspace's `benches/` use — `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, `BatchSize`, and
//! the `criterion_group!` / `criterion_main!` macros — implemented as a
//! plain wall-clock sampler: per benchmark it warms up, auto-calibrates an
//! iteration count so each sample runs ≥ ~2 ms, takes `sample_size`
//! samples, and prints min / median / max per iteration. No statistical
//! regression analysis, no HTML reports.

use std::time::{Duration, Instant};

/// How batched inputs are grouped between setup calls. The stand-in
/// re-runs setup for every routine call regardless (i.e. everything
/// behaves like `PerIteration`), which keeps results correct if slower.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher { iters_per_sample: 1, samples: Vec::new(), sample_size }
    }

    /// Benchmark `routine`, timing batches of auto-calibrated size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: grow the batch until it costs ≥ ~2 ms.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Benchmark `routine` on fresh inputs from `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut timed = Duration::ZERO;
        let mut iters: u64 = 0;
        // Calibrate on wall time of the routine alone.
        while timed < Duration::from_millis(2) && iters < 1 << 20 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            timed += t0.elapsed();
            iters += 1;
        }
        let per_sample = iters.max(1);
        self.iters_per_sample = per_sample;
        for _ in 0..self.sample_size {
            let mut sample = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                sample += t0.elapsed();
            }
            self.samples.push(sample);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> =
            self.samples.iter().map(|d| d.as_secs_f64() / self.iters_per_sample as f64).collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_time(per_iter[0]),
            fmt_time(median),
            fmt_time(*per_iter.last().expect("non-empty")),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    /// Borrow the driver for the group's lifetime, as upstream does.
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (upstream default: 100; the
    /// stand-in defaults lower to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    pub fn finish(self) {}
}

/// Benchmark driver; collects groups and prints results to stdout.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.default_sample_size);
        f(&mut bencher);
        bencher.report(&id.into());
        self
    }
}

/// Prevent the optimizer from discarding a value (upstream re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher::new(2);
        b.iter_batched(|| vec![1u32; 16], |v| v.iter().sum::<u32>(), BatchSize::LargeInput);
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with(" s"));
    }
}
