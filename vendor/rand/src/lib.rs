//! In-tree stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate serves the
//! exact API subset the workspace uses — `StdRng`, `SeedableRng`,
//! `Rng::{gen_range, gen_bool}` — backed by xoshiro256++ seeded through
//! SplitMix64. Deterministic for a given seed, which is all the graph
//! generators and pattern samplers require; it makes no cryptographic or
//! statistical-suite claims, and its streams differ from upstream
//! `rand::rngs::StdRng`.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (the one constructor CSCE uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core 64-bit generation, the basis of every sampling helper.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The default generator: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical way to seed xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Ranges a generator can sample uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// User-facing sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// `rand::rngs`, re-exporting the generator under its upstream path.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(5..10);
            assert!((5..10).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!StdRng::seed_from_u64(2).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(2).gen_bool(1.0));
    }
}
