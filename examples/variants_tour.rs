//! A tour of the three subgraph matching variants on the paper's Fig. 1
//! example: the same pattern yields different result sets under
//! edge-induced, vertex-induced and homomorphic semantics.
//!
//! ```sh
//! cargo run --release --example variants_tour
//! ```

use csce::{Engine, GraphBuilder, Variant, NO_LABEL};

fn main() {
    // Data: a 4-cycle with one chord plus a dangling A-B-A path (so all
    // three variants genuinely differ), labels alternating A(0)/B(1).
    let mut g = GraphBuilder::new();
    for l in [0u32, 1, 0, 1, 0, 1] {
        g.add_vertex(l);
    }
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (2, 5), (5, 4)] {
        g.add_undirected_edge(a, b, NO_LABEL).unwrap();
    }
    let g = g.build();
    let engine = Engine::build(&g);

    // Pattern: an A-B-A path.
    let mut p = GraphBuilder::new();
    p.add_vertex(0);
    p.add_vertex(1);
    p.add_vertex(0);
    p.add_undirected_edge(0, 1, NO_LABEL).unwrap();
    p.add_undirected_edge(1, 2, NO_LABEL).unwrap();
    let p = p.build();

    println!("pattern: A - B - A path\n");
    for variant in Variant::ALL {
        let embeddings = engine.embeddings(&p, variant);
        println!("{variant} ({} embeddings):", embeddings.len());
        for f in &embeddings {
            println!("  u0->v{} u1->v{} u2->v{}", f[0], f[1], f[2]);
        }
        println!();
    }

    println!("observations:");
    println!(" * vertex-induced drops mappings whose endpoints are also adjacent");
    println!("   in the data (the induced subgraph would contain an extra edge);");
    println!(" * homomorphic adds folded mappings with u0 and u2 on the same");
    println!("   data vertex;");
    println!(" * counts are ordered: vertex-induced <= edge-induced <= homomorphic:");
    let counts: Vec<u64> = Variant::ALL.iter().map(|&v| engine.count(&p, v)).collect();
    println!("   {} (E) vs {} (V) vs {} (H)", counts[0], counts[1], counts[2]);
    assert!(counts[1] <= counts[0] && counts[0] <= counts[2]);
}
