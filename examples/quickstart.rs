//! Quickstart: build a small heterogeneous data graph, cluster it into
//! CCSR form, and run all three subgraph matching variants.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use csce::{Engine, GraphBuilder, Variant, NO_LABEL};

fn main() {
    // A tiny heterogeneous data graph: labels 0 = User, 1 = Post,
    // 2 = Tag. Directed edges: User -> Post ("wrote", edge label 10),
    // Post -> Tag ("tagged", edge label 11), User -> User ("follows", 12).
    let mut g = GraphBuilder::new();
    let users: Vec<u32> = (0..4).map(|_| g.add_vertex(0)).collect();
    let posts: Vec<u32> = (0..5).map(|_| g.add_vertex(1)).collect();
    let tags: Vec<u32> = (0..2).map(|_| g.add_vertex(2)).collect();
    for (u, p) in [(0, 0), (0, 1), (1, 2), (2, 3), (3, 4), (1, 1)] {
        g.add_edge(users[u], posts[p], 10).unwrap();
    }
    for (p, t) in [(0, 0), (1, 0), (2, 1), (3, 0), (4, 1)] {
        g.add_edge(posts[p], tags[t], 11).unwrap();
    }
    for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 0)] {
        g.add_edge(users[a], users[b], 12).unwrap();
    }
    let g = g.build();
    println!("data graph: {}", csce::graph::GraphStats::of(&g));

    // Offline stage: cluster the graph. The engine owns G_C; the original
    // graph is no longer needed.
    let engine = Engine::build(&g);
    println!(
        "clustered into {} CCSR clusters ({} I_C entries)",
        engine.ccsr().cluster_count(),
        engine.ccsr().total_ic_len()
    );

    // Pattern: a user who wrote a post carrying the same tag as a post
    // written by a user they follow:
    //   u0(User) -follows-> u1(User), u0 -wrote-> u2(Post),
    //   u1 -wrote-> u3(Post), u2 -tagged-> u4(Tag) <-tagged- u3.
    let mut p = GraphBuilder::new();
    let u0 = p.add_vertex(0);
    let u1 = p.add_vertex(0);
    let p0 = p.add_vertex(1);
    let p1 = p.add_vertex(1);
    let t = p.add_vertex(2);
    p.add_edge(u0, u1, 12).unwrap();
    p.add_edge(u0, p0, 10).unwrap();
    p.add_edge(u1, p1, 10).unwrap();
    p.add_edge(p0, t, 11).unwrap();
    p.add_edge(p1, t, 11).unwrap();
    let p = p.build();

    for variant in Variant::ALL {
        let out = engine.run(&p, variant, csce::PlannerConfig::csce(), csce::RunConfig::default());
        println!(
            "{variant:>15}: {} embeddings  (read {:?}, plan {:?}, exec {:?}, \
             SCE cache hits {})",
            out.count, out.read_time, out.plan_time, out.exec_time, out.stats.sce_cache_hits
        );
    }

    // Enumerate a few edge-induced embeddings explicitly.
    println!("\nfirst 3 edge-induced embeddings (pattern vertex -> data vertex):");
    let mut shown = 0;
    engine.enumerate(&p, Variant::EdgeInduced, &mut |f| {
        println!("  {f:?}");
        shown += 1;
        shown < 3
    });

    // Unlabeled patterns work the same way; NO_LABEL matches NO_LABEL.
    let mut wedge = GraphBuilder::new();
    wedge.add_unlabeled_vertices(2);
    wedge.add_undirected_edge(0, 1, NO_LABEL).unwrap();
    let wedge = wedge.build();
    println!(
        "\nunlabeled undirected edge pattern in this graph: {} embeddings \
         (the graph has no undirected unlabeled edges)",
        engine.count(&wedge, Variant::EdgeInduced)
    );
}
