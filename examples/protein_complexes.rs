//! Protein-complex search, the paper's motivating scenario (§I): find
//! all occurrences of large protein-complex patterns (8+ vertices,
//! DPCMNE/MIPS-style) in a DIP-like protein–protein interaction network.
//!
//! ```sh
//! cargo run --release --example protein_complexes
//! ```

use csce::datasets::presets;
use csce::engine::{Engine, PlannerConfig, RunConfig};
use csce::graph::sample::PatternSampler;
use csce::graph::Density;
use csce::Variant;
use std::time::Duration;

fn main() {
    let ds = presets::dip();
    println!("data graph {} — {}", ds.name, ds.stats());
    let engine = Engine::build(&ds.graph);

    // "MIPS complexes": in the paper these are curated complexes appearing
    // at least once in DIP; we sample connected regions of the network the
    // same way the evaluation workloads are built, sizes 8 and 9 as in
    // Fig. 9.
    let mut sampler = PatternSampler::new(&ds.graph, 0xC0FFEE);
    for size in [8usize, 9] {
        let complexes = sampler.sample_many(5, size, Density::Sparse);
        println!("\n=== complexes of size {size} ===");
        for (i, sp) in complexes.iter().enumerate() {
            let out = engine.run(
                &sp.pattern,
                Variant::EdgeInduced,
                PlannerConfig::csce(),
                // Counts reach billions on hub-heavy PPI networks (the
                // paper's Fig. 9 shows 10^2..10^10 embeddings on DIP), so
                // cap each complex; partial counts are flagged.
                RunConfig { time_limit: Some(Duration::from_secs(5)), ..Default::default() },
            );
            println!(
                "complex {i}: |V|={} |E|={}  {} edge-induced occurrences in {:?}{}",
                sp.pattern.n(),
                sp.pattern.m(),
                out.count,
                out.total_time(),
                if out.stats.timed_out { "  [timed out — partial]" } else { "" },
            );
            // The sampled region itself is always one of the occurrences.
            assert!(out.count >= 1 || out.stats.timed_out);
        }
    }

    // Vertex-induced semantics answer the stricter question "which vertex
    // sets induce exactly this complex topology".
    if let Some(sp) = sampler.sample(8, Density::Sparse) {
        let e = engine.count(&sp.pattern, Variant::EdgeInduced);
        let v = engine.count(&sp.pattern, Variant::VertexInduced);
        println!(
            "\nvariant comparison on one size-8 complex: edge-induced {e}, vertex-induced {v} \
             (every vertex-induced occurrence is also edge-induced: {})",
            v <= e
        );
    }
}
