//! Motif census: count every standard 3–4-vertex motif in a data graph —
//! the workload behind higher-order organization studies (Benson et al.,
//! the paper's [2]) and a tour of `Engine::count_subgraphs`.
//!
//! ```sh
//! cargo run --release --example motif_census
//! ```

use csce::datasets::motifs;
use csce::datasets::presets;
use csce::engine::Engine;
use csce::graph::automorphism::automorphism_count;
use csce::graph::Graph;
use csce::Variant;
use std::time::Instant;

fn main() {
    let ds = presets::yeast();
    println!("data graph {} — {}\n", ds.name, ds.stats());
    let engine = Engine::build(&ds.graph);

    let motifs: Vec<(&str, Graph)> = vec![
        ("wedge (P3)", motifs::path(3)),
        ("triangle (K3)", motifs::clique(3)),
        ("path (P4)", motifs::path(4)),
        ("star (S3)", motifs::star(3)),
        ("cycle (C4)", motifs::cycle(4)),
        ("paw", motifs::paw()),
        ("diamond", motifs::diamond()),
        ("clique (K4)", motifs::clique(4)),
    ];

    println!(
        "{:<14} {:>14} {:>14} {:>8} {:>10}",
        "motif", "subgraphs", "mappings", "|Aut|", "time"
    );
    for (name, p) in &motifs {
        // The data graph carries labels; motifs are unlabeled, so strip
        // labels by re-labeling the data graph? Instead match against the
        // unlabeled view prepared once below.
        let t0 = Instant::now();
        let subgraphs = engine_unlabeled().count_subgraphs(p, Variant::EdgeInduced);
        let elapsed = t0.elapsed();
        let aut = automorphism_count(p);
        println!(
            "{:<14} {:>14} {:>14} {:>8} {:>9.0?}",
            name,
            subgraphs,
            subgraphs * aut,
            aut,
            elapsed
        );
    }

    // Consistency check the paper's engines rely on: mappings = distinct
    // subgraphs x |Aut|.
    let tri = motifs::clique(3);
    let mappings = engine_unlabeled().count(&tri, Variant::EdgeInduced);
    let subgraphs = engine_unlabeled().count_subgraphs(&tri, Variant::EdgeInduced);
    assert_eq!(mappings, subgraphs * 6);
    println!("\nsanity: triangle mappings {mappings} = {subgraphs} subgraphs x 6 automorphisms");
    drop(engine);
}

/// The Yeast graph with labels stripped, clustered once.
fn engine_unlabeled() -> &'static Engine {
    use std::sync::OnceLock;
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let ds = presets::yeast();
        let unlabeled = csce::graph::generate::randomize_vertex_labels(&ds.graph, 0, 0);
        Engine::build(&unlabeled)
    })
}
