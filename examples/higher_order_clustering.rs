//! The EMAIL-EU case study (paper §VII-G): recover department structure
//! from email traffic by clustering on k-clique co-occurrence instead of
//! raw edges. The paper reports pairwise F1 improving from 0.398
//! (edge-based) to 0.515 (8-clique higher-order) with 8-clique discovery
//! running in 0.39s under CSCE.
//!
//! ```sh
//! cargo run --release --example higher_order_clustering [k]
//! ```

use csce::datasets::email::{email_eu, run_case_study};

fn main() {
    let k: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let (g, truth) = email_eu();
    println!(
        "EMAIL-EU-like network: {} members, {} edges, {} departments",
        g.n(),
        g.m(),
        truth.iter().copied().max().unwrap() + 1
    );
    let result = run_case_study(&g, &truth, k);
    println!("\nedge-based clustering        F1 = {:.3}", result.f1_edge);
    println!("{}-clique higher-order        F1 = {:.3}", result.clique_size, result.f1_motif);
    println!(
        "{} {}-clique instances found in {:?} (one per subgraph via ordering restrictions)",
        result.cliques_found, result.clique_size, result.clique_time
    );
    if result.f1_motif > result.f1_edge {
        println!("\nhigher-order clustering wins, as in the paper (0.398 -> 0.515).");
    } else {
        println!("\nno improvement on this instance — try a different k.");
    }

    // Local higher-order clustering (Yin et al.'s actual recipe): seed a
    // member, run approximate PageRank on the motif adjacency, sweep for
    // the minimum-conductance prefix.
    use csce::datasets::{motif_adjacency, sweep_cut};
    use csce::engine::Engine;
    let engine = Engine::build(&g);
    let motif = motif_adjacency(&engine, 3); // triangles for speed
    let seed = 0u32;
    let community = sweep_cut(g.n(), &motif, seed, 0.15, 1e-6);
    let hits = community.iter().filter(|&&v| truth[v as usize] == truth[seed as usize]).count();
    println!(
        "\nlocal motif-conductance cluster around member {seed}: {} members, \
         {hits} share the seed's department ({:.0}% precision)",
        community.len(),
        100.0 * hits as f64 / community.len() as f64
    );
}
