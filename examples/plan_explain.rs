//! Inspect what the CSCE planner does for a pattern: the GCF order, the
//! dependency DAG, SCE occurrence, NEC classes, cache slots, and the
//! factorized execution tree — the machinery of §V–§VI made visible.
//!
//! ```sh
//! cargo run --release --example plan_explain
//! ```

use csce::datasets::presets;
use csce::engine::plan::explain::explain;
use csce::engine::{Engine, PlannerConfig};
use csce::graph::sample::PatternSampler;
use csce::graph::Density;
use csce::Variant;

fn main() {
    let ds = presets::yeast();
    println!("data graph {} — {}", ds.name, ds.stats());
    let engine = Engine::build(&ds.graph);

    let mut sampler = PatternSampler::new(&ds.graph, 31);
    let sp = sampler.sample(10, Density::Sparse).expect("sample a 10-vertex pattern");
    let p = sp.pattern;
    println!("pattern: |V|={} |E|={} labels={:?}\n", p.n(), p.m(), p.labels());

    for variant in Variant::ALL {
        let plan = engine.plan(&p, variant, PlannerConfig::csce());
        println!("=== {variant} ===");
        print!("{}", explain(&plan));
        println!();
    }
}
